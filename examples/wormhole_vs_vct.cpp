// Flow-control study: the same network under VCT (small packets) and
// wormhole (large packets in flits), mirroring the paper's two evaluation
// environments (Cray Cascade-like vs. IBM PERCS-like). Shows RLM working
// under both while OLM is VCT-only, and the WH latency penalty.
//
//   ./wormhole_vs_vct [h]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "api/simulator.hpp"

int main(int argc, char** argv) {
  dfsim::SimConfig base;
  base.h = argc > 1 ? std::atoi(argv[1]) : 3;
  base.warmup_cycles = 3000;
  base.measure_cycles = 8000;
  base.pattern = "advg";
  base.pattern_offset = 1;
  base.load = 0.4;

  std::cout << "ADVG+1 at load 0.4 on " << base.make_topology().describe()
            << "\n\n";
  std::cout << std::left << std::setw(10) << "routing" << std::setw(12)
            << "flow" << std::right << std::setw(12) << "latency"
            << std::setw(12) << "accepted" << "\n";

  for (const char* routing : {"rlm", "par-6/2", "olm"}) {
    for (const bool wormhole : {false, true}) {
      dfsim::SimConfig cfg = base;
      cfg.routing = routing;
      if (wormhole) {
        cfg.flow = dfsim::FlowControl::kWormhole;
        cfg.packet_phits = 80;
        cfg.flit_phits = 10;
      }
      std::cout << std::left << std::setw(10) << routing << std::setw(12)
                << (wormhole ? "wormhole" : "VCT");
      if (wormhole && routing == std::string("olm")) {
        std::cout << std::right << std::setw(24)
                  << "unsupported (paper III-C)" << "\n";
        continue;
      }
      const dfsim::SteadyResult r = run_steady(cfg);
      std::cout << std::right << std::fixed << std::setprecision(1)
                << std::setw(12) << r.avg_latency << std::setprecision(3)
                << std::setw(12) << r.accepted_load << "\n";
    }
  }
  std::cout << "\nWormhole pays per-hop serialization of larger packets\n"
               "and suffers head-of-line blocking with only 3 local VCs;\n"
               "that is why the paper pairs WH with RLM, not OLM.\n";
  return 0;
}
