// Reproduces the paper's threshold-selection methodology (Sec. IV-C) as a
// reusable workflow: sweep the misrouting threshold for any adaptive
// mechanism under uniform AND adversarial traffic, then report the
// trade-off table from which the 45% compromise is picked.
//
//   ./threshold_tuning [routing] [h]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "api/simulator.hpp"

int main(int argc, char** argv) {
  dfsim::SimConfig cfg;
  cfg.routing = argc > 1 ? argv[1] : "rlm";
  cfg.h = argc > 2 ? std::atoi(argv[2]) : 3;
  cfg.warmup_cycles = 3000;
  cfg.measure_cycles = 8000;

  std::cout << "threshold tuning for " << cfg.routing << " on "
            << cfg.make_topology().describe() << "\n\n";
  std::cout << std::left << std::setw(12) << "threshold" << std::right
            << std::setw(14) << "UN thpt" << std::setw(14) << "UN lat"
            << std::setw(14) << "ADVG+1 thpt" << std::setw(14)
            << "ADVG+1 lat" << "\n";

  for (const double th : {0.30, 0.40, 0.45, 0.50, 0.60}) {
    cfg.misroute_threshold = th;

    dfsim::SimConfig un = cfg;
    un.pattern = "uniform";
    un.load = 0.8;
    const auto run_un = run_steady(un);

    dfsim::SimConfig adv = cfg;
    adv.pattern = "advg";
    adv.pattern_offset = 1;
    adv.load = 0.6;
    const auto run_adv = run_steady(adv);

    std::cout << std::left << std::setw(12) << th << std::right
              << std::fixed << std::setprecision(3) << std::setw(14)
              << run_un.accepted_load << std::setw(14) << std::setprecision(1)
              << run_un.avg_latency << std::setw(14) << std::setprecision(3)
              << run_adv.accepted_load << std::setw(14)
              << std::setprecision(1) << run_adv.avg_latency << "\n";
  }
  std::cout << "\nLow thresholds favour uniform traffic, high ones favour\n"
               "adversarial traffic; the paper settles on 45%.\n";
  return 0;
}
