// Quickstart: build a dragonfly, pick a routing mechanism, run uniform
// and adversarial traffic, print latency/throughput. Start here.
//
// The topology argument is either a bare h (the balanced paper shape) or
// a full (p, a, h, g) spec string:
//
//   ./quickstart [routing] [h | topo-spec] [load]
//   ./quickstart olm 4 0.5
//   ./quickstart rlm p2a6h3g8 0.4
#include <cstdlib>
#include <iostream>

#include "api/simulator.hpp"

int main(int argc, char** argv) {
  dfsim::SimConfig cfg;
  cfg.routing = argc > 1 ? argv[1] : "olm";
  // A bare integer is the balanced-h shorthand; anything else is a full
  // (p, a, h, g) spec — parse_topo_spec handles both.
  cfg.topo = argc > 2 ? argv[2] : "h3";
  cfg.load = argc > 3 ? std::atof(argv[3]) : 0.5;
  cfg.warmup_cycles = 3000;
  cfg.measure_cycles = 8000;

  const dfsim::DragonflyTopology topo = cfg.make_topology();
  std::cout << topo.describe() << "\n";
  std::cout << "routing=" << cfg.routing << " offered load=" << cfg.load
            << " phits/(node*cycle)\n\n";

  for (const char* pattern : {"uniform", "advg", "advl"}) {
    cfg.pattern = pattern;
    cfg.pattern_offset = 1;
    const dfsim::SteadyResult r = run_steady(cfg);
    std::cout << pattern << ": avg latency " << r.avg_latency
              << " cycles, p99 " << r.p99_latency << ", accepted load "
              << r.accepted_load << ", avg hops " << r.avg_hops
              << (r.deadlock ? "  [DEADLOCK]" : "") << "\n";
  }
  return 0;
}
