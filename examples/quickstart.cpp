// Quickstart: build a dragonfly, pick a routing mechanism, run uniform
// and adversarial traffic, print latency/throughput. Start here.
//
//   ./quickstart [routing] [h] [load]
//   ./quickstart olm 4 0.5
#include <cstdlib>
#include <iostream>

#include "api/simulator.hpp"

int main(int argc, char** argv) {
  dfsim::SimConfig cfg;
  cfg.routing = argc > 1 ? argv[1] : "olm";
  cfg.h = argc > 2 ? std::atoi(argv[2]) : 3;
  cfg.load = argc > 3 ? std::atof(argv[3]) : 0.5;
  cfg.warmup_cycles = 3000;
  cfg.measure_cycles = 8000;

  const dfsim::DragonflyTopology topo(cfg.h);
  std::cout << topo.describe() << "\n";
  std::cout << "routing=" << cfg.routing << " offered load=" << cfg.load
            << " phits/(node*cycle)\n\n";

  for (const char* pattern : {"uniform", "advg", "advl"}) {
    cfg.pattern = pattern;
    cfg.pattern_offset = 1;
    const dfsim::SteadyResult r = run_steady(cfg);
    std::cout << pattern << ": avg latency " << r.avg_latency
              << " cycles, p99 " << r.p99_latency << ", accepted load "
              << r.accepted_load << ", avg hops " << r.avg_hops
              << (r.deadlock ? "  [DEADLOCK]" : "") << "\n";
  }
  return 0;
}
