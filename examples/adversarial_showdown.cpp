// The paper's motivating scenario, end to end: compare every routing
// mechanism on the traffic patterns that break dragonflies — ADVG+1 (one
// saturated global link), ADVG+h (the pathological local link in the
// intermediate group) and ADVL+1 (one saturated local link) — and show
// why local misrouting matters.
//
//   ./adversarial_showdown [h] [load]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "api/simulator.hpp"

int main(int argc, char** argv) {
  dfsim::SimConfig cfg;
  cfg.h = argc > 1 ? std::atoi(argv[1]) : 3;
  cfg.load = argc > 2 ? std::atof(argv[2]) : 1.0;
  cfg.warmup_cycles = 3000;
  cfg.measure_cycles = 8000;

  const dfsim::DragonflyTopology topo = cfg.make_topology();
  std::cout << topo.describe() << "\noffered load " << cfg.load
            << " phits/(node*cycle)\n\n";
  // ADVG: the group's a*p terminals share one global link; ADVL: the
  // router's p terminals share one local link.
  std::cout << "analytic caps without misrouting: ADVG "
            << 1.0 / (topo.routers_per_group() * topo.terminals_per_router())
            << " (single global link), ADVL "
            << 1.0 / topo.terminals_per_router() << " (single local link)\n\n";

  std::cout << std::left << std::setw(14) << "routing" << std::right
            << std::setw(12) << "UN" << std::setw(12) << "ADVG+1"
            << std::setw(12) << "ADVG+h" << std::setw(12) << "ADVL+1"
            << "   (accepted load)\n";

  for (const char* routing :
       {"minimal", "valiant", "pb", "ugal", "par-6/2", "rlm", "olm"}) {
    std::cout << std::left << std::setw(14) << routing << std::right
              << std::fixed << std::setprecision(3);
    struct Case {
      const char* pattern;
      int offset;
    };
    for (const Case c : {Case{"uniform", 0}, Case{"advg", 1},
                         Case{"advg", cfg.h}, Case{"advl", 1}}) {
      dfsim::SimConfig pc = cfg;
      pc.routing = routing;
      pc.pattern = c.pattern;
      pc.pattern_offset = c.offset;
      const dfsim::SteadyResult r = run_steady(pc);
      std::cout << std::setw(12) << r.accepted_load;
    }
    std::cout << "\n";
  }
  std::cout << "\nNote how only the mechanisms with local misrouting\n"
               "(par-6/2, rlm, olm) escape the 1/h ceilings on ADVG+h and\n"
               "ADVL+1 — the paper's central result.\n";
  return 0;
}
