// Makes the paper's pathologies visible at link granularity: run ADVG+1
// with minimal routing and watch ONE global link saturate while the rest
// idle; run it again with OLM and watch the load spread. Then do the same
// for ADVL+1 and local links.
//
//   ./link_utilization [h | topo-spec] [load]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>

#include "api/config.hpp"
#include "metrics/link_stats.hpp"
#include "routing/factory.hpp"
#include "sim/engine.hpp"
#include "topology/dragonfly_topology.hpp"
#include "traffic/pattern.hpp"

namespace {

dfsim::DragonflyTopology build_topology(const std::string& shape) {
  // Accepts a bare h or a full spec string, like SimConfig::topo.
  const dfsim::TopoParams tp = dfsim::parse_topo_spec(shape);
  return dfsim::DragonflyTopology(tp.p, tp.a, tp.h, tp.g);
}

void report(const char* title, const char* routing_name,
            const char* pattern_name, const std::string& shape,
            double load) {
  using namespace dfsim;
  const DragonflyTopology topo = build_topology(shape);
  auto routing = make_routing(routing_name, topo, {});
  auto pattern = make_pattern(topo, pattern_name, 1, 0.0);
  InjectionProcess inj;
  inj.load = load;
  EngineConfig ec;
  Engine engine(topo, ec, *routing, *pattern, inj);
  LinkStats stats(topo);
  stats.attach(engine);
  engine.run_until(8000);

  std::cout << title << " (" << routing_name << ", " << pattern_name
            << ")\n";
  for (const PortClass cls : {PortClass::kGlobal, PortClass::kLocal}) {
    const auto s = stats.summarize(cls, engine.now());
    std::cout << "  " << (cls == PortClass::kGlobal ? "global" : "local ")
              << " links: mean " << std::fixed << std::setprecision(3)
              << s.mean << "  max " << s.max << "\n";
    for (const auto& hot : stats.hottest(cls, engine.now(), 3)) {
      std::cout << "    hot: " << stats.describe_link(hot.router, hot.port)
                << " at " << hot.utilization << " phits/cycle\n";
    }
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string shape = argc > 1 ? argv[1] : "3";
  const double load = argc > 2 ? std::atof(argv[2]) : 0.4;

  std::cout << build_topology(shape).describe() << ", load " << load
            << "\n\n";
  report("ADVG+1, no misrouting: one global link takes everything",
         "minimal", "advg", shape, load);
  report("ADVG+1, OLM: Valiant detours spread the global load", "olm",
         "advg", shape, load);
  report("ADVL+1, no misrouting: one local link per router saturates",
         "minimal", "advl", shape, load);
  report("ADVL+1, OLM: local misrouting spreads it", "olm", "advl", shape,
         load);
  return 0;
}
