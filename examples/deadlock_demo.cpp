// Demonstrates the deadlock the paper's mechanisms exist to prevent.
//
// Statically: builds the intra-group channel dependency graph with and
// without the parity-sign restriction and prints a concrete cycle.
// Dynamically: runs unrestricted local misrouting at 3/2 VCs under
// adversarial-local stress until the watchdog trips, then runs RLM and
// OLM on the identical workload to completion.
#include <iostream>

#include "analysis/cdg.hpp"
#include "api/simulator.hpp"

int main() {
  using namespace dfsim;

  // Size the intra-group analysis from the topology (a routers per
  // group) instead of hard-coding the balanced 2h.
  const DragonflyTopology topo(4);  // a = 8
  std::cout << "== static analysis: intra-group CDG (group of "
            << topo.routers_per_group() << ") ==\n";
  const LocalRouteRestriction none(RestrictionPolicy::kNone);
  const LocalChannelDependencyGraph g_none(topo, none);
  const auto cycle = g_none.find_cycle();
  std::cout << "unrestricted: cycle of length " << cycle.size()
            << " among local channels -> deadlock possible\n";

  const LocalRouteRestriction ps(RestrictionPolicy::kParitySign);
  const LocalChannelDependencyGraph g_ps(topo, ps);
  std::cout << "parity-sign:  "
            << (g_ps.has_cycle() ? "CYCLE (bug!)" : "acyclic")
            << " -> RLM is deadlock-free by construction\n\n";

  std::cout << "== dynamic run: ADVL+1 at load 1.0, 3/2 VCs ==\n";
  SimConfig cfg;
  cfg.h = 3;
  cfg.pattern = "advl";
  cfg.pattern_offset = 1;
  cfg.load = 1.0;
  cfg.misroute_threshold = 0.9;  // aggressive misrouting
  cfg.local_buf_phits = 16;      // tight buffers
  cfg.warmup_cycles = 2000;
  cfg.measure_cycles = 16000;
  cfg.watchdog_cycles = 3000;

  for (const char* routing : {"rlm-unrestricted", "rlm", "olm"}) {
    SimConfig pc = cfg;
    pc.routing = routing;
    const SteadyResult r = run_steady(pc);
    std::cout << routing << ": "
              << (r.deadlock ? "DEADLOCK detected by watchdog"
                             : "completed deadlock-free")
              << ", accepted load " << r.accepted_load << "\n";
  }
  return 0;
}
